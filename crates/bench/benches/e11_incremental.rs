//! E11 (ablation) — incremental delta propagation vs full
//! recompute-and-diff: the design choice behind `IncrementalLens`.
//!
//! The paper's delta-lens citation motivates propagating *changes*
//! rather than whole states; this bench quantifies the win on a
//! select–join–project pipeline as the base grows and the edit batch
//! stays small.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dex_lens::edit::Delta;
use dex_relational::{tuple, Expr, Instance, Name, RelSchema, Schema, Tuple};
use dex_rellens::{IncrementalLens, JoinPolicy, RelLensExpr, UpdatePolicy};
use std::hint::black_box;

/// Short measurement windows: the suite's job is shape, not
/// publication-grade confidence intervals; this keeps the full
/// `cargo bench --workspace` run to a couple of minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

fn schema() -> Schema {
    Schema::with_relations(vec![
        RelSchema::untyped("Person", vec!["id", "name", "age"]).unwrap(),
        RelSchema::untyped("AgeBand", vec!["age", "band"]).unwrap(),
    ])
    .unwrap()
}

fn pipeline() -> RelLensExpr {
    RelLensExpr::base("Person")
        .select(Expr::attr("age").ge(Expr::lit(18i64)))
        .join(RelLensExpr::base("AgeBand"), JoinPolicy::DeleteBoth)
        .project(
            vec!["id", "band"],
            vec![("name", UpdatePolicy::Null), ("age", UpdatePolicy::Null)],
        )
}

fn base_instance(n: usize) -> Instance {
    let mut inst = Instance::empty(schema());
    for i in 0..n {
        inst.insert(
            "Person",
            tuple![i as i64, format!("p{i}").as_str(), (i % 60) as i64],
        )
        .unwrap();
    }
    for a in 0..60i64 {
        inst.insert("AgeBand", tuple![a, format!("band{}", a / 10).as_str()])
            .unwrap();
    }
    inst
}

fn edit_batch(n: usize, k: usize) -> Delta {
    let mut d = Delta::default();
    for i in 0..k {
        d.inserts.push((
            Name::new("Person"),
            tuple![(n + i) as i64, format!("new{i}").as_str(), 33i64],
        ));
        d.deletes.push((
            Name::new("Person"),
            tuple![i as i64, format!("p{i}").as_str(), (i % 60) as i64],
        ));
    }
    d
}

fn diff_views(
    v0: &dex_relational::Relation,
    v1: &dex_relational::Relation,
) -> (Vec<Tuple>, Vec<Tuple>) {
    let t0 = v0.tuples();
    let t1 = v1.tuples();
    let ins: Vec<Tuple> = t1.difference(&t0).cloned().collect();
    let del: Vec<Tuple> = t0.difference(&t1).cloned().collect();
    (ins, del)
}

fn bench_incremental_vs_full(c: &mut Criterion) {
    let expr = pipeline();
    let mut group = c.benchmark_group("e11_incremental");
    for n in [1_000usize, 10_000] {
        let base = base_instance(n);
        let delta = edit_batch(n, 16);
        let after = delta.apply(&base).unwrap();
        group.throughput(Throughput::Elements(16));

        group.bench_with_input(
            BenchmarkId::new("full_recompute_diff", n),
            &(&base, &after),
            |b, (base, after)| {
                b.iter(|| {
                    let v0 = expr.get(black_box(base)).unwrap();
                    let v1 = expr.get(black_box(after)).unwrap();
                    diff_views(&v0, &v1)
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("incremental_apply", n),
            &base,
            |b, base| {
                b.iter_batched(
                    || IncrementalLens::new(&expr, base.schema(), base).unwrap(),
                    |mut inc| inc.apply(black_box(&delta)).unwrap(),
                    criterion::BatchSize::LargeInput,
                )
            },
        );

        // Steady state: the lens is built once, deltas stream through.
        group.bench_with_input(
            BenchmarkId::new("incremental_steady_state", n),
            &base,
            |b, base| {
                let mut inc = IncrementalLens::new(&expr, base.schema(), base).unwrap();
                let undo = delta.inverse();
                b.iter(|| {
                    let d1 = inc.apply(black_box(&delta)).unwrap();
                    let d2 = inc.apply(black_box(&undo)).unwrap();
                    (d1, d2)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_incremental_vs_full
}
criterion_main!(benches);
