//! E17 — sharded parallel premise matching and the columnar storage
//! ablation, on E1's Emp → Manager workload scaled to 10⁵–10⁷ tuples.
//!
//! Two questions:
//! * `threads/T` — cores-vs-speedup for the sharded matcher
//!   (`ChaseOptions::threads`): the same Emp → Manager + Mgr chase at
//!   T ∈ {1, 2, 4, 8} worker threads. Phase 1 shards first-atom seeds
//!   round-robin; phase 2 hash-partitions the round delta. Output is
//!   bit-identical at every T (see the `parallel_matching_literally_
//!   equals_sequential` property), so the arms measure pure matching
//!   throughput.
//! * `columnar` vs `row_materialize` — what the column-major tuple
//!   arena buys on the hot read path: a full predicate scan reading
//!   `(tuple_id, col)` cells in place vs materializing each row as a
//!   boundary `Tuple` first (the pre-refactor access pattern).
//!
//! Sizes: the thread arms run at 10⁵ and 10⁶ by default; set
//! `DEX_E17_HUGE=1` to add the 10⁷ arm (minutes per sample on one
//! core). The storage ablation runs at 10⁴ and 10⁵.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dex_chase::{exchange_with, ChaseOptions, Matcher};
use dex_logic::{parse_mapping, Mapping};
use dex_relational::{tuple, Instance, Value};
use std::hint::black_box;

/// Few, short samples: a single 10⁶-tuple chase already runs seconds;
/// the suite's job is shape, not publication-grade intervals.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

/// E1 plus a target tgd, so both matcher phases run: phase 1 fires
/// the st-tgd (seed-sharded), phase 2 re-fires Manager → Mgr
/// delta-driven (hash-partitioned).
fn emp_mgr_mapping() -> Mapping {
    parse_mapping(
        r#"
        source Emp(name);
        target Manager(emp, mgr);
        target Mgr(m);
        Emp(x) -> Manager(x, y);
        Manager(e, m) -> Mgr(m);
        "#,
    )
    .unwrap()
}

fn emps(n: usize) -> Instance {
    let m = emp_mgr_mapping();
    let mut inst = Instance::empty(m.source().clone());
    for i in 0..n {
        inst.insert("Emp", tuple![format!("emp{i}").as_str()])
            .unwrap();
    }
    inst
}

fn bench_threads(c: &mut Criterion) {
    let m = emp_mgr_mapping();
    let mut sizes = vec![100_000usize, 1_000_000];
    if std::env::var_os("DEX_E17_HUGE").is_some() {
        sizes.push(10_000_000);
    }
    let mut group = c.benchmark_group("e17_parallel");
    for n in sizes {
        let src = emps(n);
        group.throughput(Throughput::Elements(n as u64));
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("threads/{threads}"), n),
                &src,
                |b, src| {
                    b.iter(|| {
                        exchange_with(
                            black_box(&m),
                            black_box(src),
                            ChaseOptions {
                                matcher: Matcher::Indexed,
                                threads,
                                ..Default::default()
                            },
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

/// The storage ablation: a full predicate scan over one relation,
/// reading cells columnar-in-place vs materializing each row.
fn bench_columnar_vs_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_storage");
    for n in [10_000usize, 100_000] {
        let src = emps(n);
        let rel = src.relation("Emp").unwrap();
        let needle = Value::str(format!("emp{}", n - 1));
        group.throughput(Throughput::Elements(n as u64));
        // Columnar: read each (tuple_id, col) cell in place — the
        // access pattern of `unify_row` on the matcher hot path.
        group.bench_with_input(BenchmarkId::new("columnar", n), &rel, |b, rel| {
            b.iter(|| {
                let mut hits = 0usize;
                for &id in rel.row_ids().iter() {
                    if rel.value_at(id, 0) == &needle {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
        // Row-materializing: build a boundary `Tuple` per row before
        // looking at it — the pre-columnar access pattern.
        group.bench_with_input(BenchmarkId::new("row_materialize", n), &rel, |b, rel| {
            b.iter(|| {
                let mut hits = 0usize;
                for t in rel.iter() {
                    if t.get(0) == Some(&needle) {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_threads, bench_columnar_vs_row
}
criterion_main!(benches);
