//! E9 — Figure 2: the two schema-evolution strategies head to head —
//! (a) invert the evolution lenses and compose, (b) channel-propagate
//! the SMOs and run the rewritten mapping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dex_core::{compile, Engine};
use dex_evolution::{propagate_all, ColumnDefault, EvolutionLens, Smo};
use dex_lens::symmetric::{invert, SymLens};
use dex_logic::parse_mapping;
use dex_relational::{AttrType, Instance, Name, Tuple, Value};
use dex_rellens::Environment;
use std::hint::black_box;

/// Short measurement windows: the suite's job is shape, not
/// publication-grade confidence intervals; this keeps the full
/// `cargo bench --workspace` run to a couple of minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

fn mapping() -> dex_logic::Mapping {
    parse_mapping(
        r#"
        source Person(id, name, age);
        target Contact(name);
        Person(i, n, a) -> Contact(n);
        "#,
    )
    .unwrap()
}

fn evolution() -> Vec<Smo> {
    vec![
        Smo::RenameTable {
            from: Name::new("Person"),
            to: Name::new("People"),
        },
        Smo::AddColumn {
            table: Name::new("People"),
            column: Name::new("city"),
            ty: AttrType::Any,
            default: ColumnDefault::Const("unknown".into()),
        },
    ]
}

fn evolved_instance(n: usize) -> Instance {
    let evo = EvolutionLens::new(evolution(), mapping().source().clone()).unwrap();
    let mut inst = Instance::empty(evo.final_schema().unwrap().clone());
    for i in 0..n {
        inst.insert(
            "People",
            Tuple::new(vec![
                Value::int(i as i64),
                Value::str(format!("p{i}")),
                Value::int(30),
                Value::str("Sydney"),
            ]),
        )
        .unwrap();
    }
    inst
}

fn bench_strategies(c: &mut Criterion) {
    let m = mapping();
    let mut group = c.benchmark_group("e9_evolution");
    for n in [100usize, 1_000] {
        let evolved = evolved_instance(n);
        group.throughput(Throughput::Elements(n as u64));

        // (a) invert evolution lens + engine forward (engine pre-built;
        // the per-sync cost is what matters).
        let evo = EvolutionLens::new(evolution(), m.source().clone()).unwrap();
        let engine = Engine::new(compile(&m).unwrap(), Environment::new()).unwrap();
        group.bench_with_input(
            BenchmarkId::new("invert_and_compose", n),
            &evolved,
            |b, evolved| {
                b.iter(|| {
                    let inv = invert(evo.clone());
                    let (a_inst, _) = inv.put_r(black_box(evolved), &inv.missing());
                    engine.forward(&a_inst, None).unwrap()
                })
            },
        );

        // (b) channel propagation (mapping rewritten once, then run).
        let m2 = propagate_all(&evolution(), &m).unwrap();
        let engine2 = Engine::new(compile(&m2).unwrap(), Environment::new()).unwrap();
        group.bench_with_input(
            BenchmarkId::new("channel_propagation", n),
            &evolved,
            |b, evolved| b.iter(|| engine2.forward(black_box(evolved), None).unwrap()),
        );
    }
    group.finish();
}

fn bench_propagation_rewrite(c: &mut Criterion) {
    // The one-time rewriting cost of strategy (b).
    let m = mapping();
    let smos = evolution();
    c.bench_function("e9_evolution/propagate_rewrite", |b| {
        b.iter(|| propagate_all(black_box(&smos), black_box(&m)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_strategies, bench_propagation_rewrite
}
criterion_main!(benches);
