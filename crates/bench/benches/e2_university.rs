//! E2 — Figure 1's university mapping: correspondence-diagram
//! compilation cost and chase cost vs instance size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dex_bench::{takes, university_mapping};
use dex_chase::{exchange, exchange_with, ChaseOptions, Matcher};
use dex_logic::{CorrespondenceGroup, CorrespondenceSet};
use dex_relational::{RelSchema, Schema};
use std::hint::black_box;

/// Short measurement windows: the suite's job is shape, not
/// publication-grade confidence intervals; this keeps the full
/// `cargo bench --workspace` run to a couple of minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

fn figure1_schemas() -> (Schema, Schema) {
    let source = Schema::with_relations(vec![
        RelSchema::untyped("Takes", vec!["name", "course"]).unwrap()
    ])
    .unwrap();
    let target = Schema::with_relations(vec![
        RelSchema::untyped("Student", vec!["id", "name"]).unwrap(),
        RelSchema::untyped("Assgn", vec!["name", "course"]).unwrap(),
    ])
    .unwrap();
    (source, target)
}

fn bench_correspondence_compile(c: &mut Criterion) {
    let (source, target) = figure1_schemas();
    let diagram = CorrespondenceSet::new(vec![CorrespondenceGroup::new(
        vec!["Takes"],
        vec!["Student", "Assgn"],
    )
    .arrow(("Takes", "name"), ("Student", "name"))
    .arrow(("Takes", "name"), ("Assgn", "name"))
    .arrow(("Takes", "course"), ("Assgn", "course"))]);
    c.bench_function("e2_university/correspondence_compile", |b| {
        b.iter(|| {
            diagram
                .compile(black_box(&source), black_box(&target))
                .unwrap()
        })
    });
}

fn bench_university_chase(c: &mut Criterion) {
    let mapping = university_mapping();
    let mut group = c.benchmark_group("e2_university/chase");
    for n in [100usize, 1_000, 5_000, 10_000] {
        let src = takes(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &src, |b, src| {
            b.iter(|| exchange(black_box(&mapping), black_box(src)).unwrap())
        });
        // Full-scan oracle (the pre-index implementation), for the
        // speedup comparison; quadratic, so capped at 10⁴.
        group.bench_with_input(BenchmarkId::new("scan", n), &src, |b, src| {
            b.iter(|| {
                exchange_with(
                    black_box(&mapping),
                    black_box(src),
                    ChaseOptions {
                        matcher: Matcher::Scan,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_correspondence_compile, bench_university_chase
}
criterion_main!(benches);
