//! E13 — static analysis cost vs mapping size: `dex_analyze::analyze`
//! over synthetic mappings of 10/100/1000 st-tgds.
//!
//! The chase-based redundancy lint (DEX105) dominates at scale — it
//! chases the remaining dependencies once per tgd — so it is measured
//! separately: the full analysis runs on the smaller sizes, and the
//! `no_redundancy` configuration covers all three.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dex_analyze::{analyze_with, AnalyzeOptions};
use dex_logic::{Atom, Mapping, StTgd, Term};
use dex_relational::{RelSchema, Schema};
use std::hint::black_box;

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

/// `n` independent copy rules `S{i}(x, y) -> T{i}(x, z)`: every pass
/// has real work (positions, shapes, occurrence counts) but the mapping
/// stays lint-quiet, so the measurement is pure analysis cost.
fn copy_mapping(n: usize) -> Mapping {
    let source = Schema::with_relations(
        (0..n)
            .map(|i| RelSchema::untyped(format!("S{i}"), vec!["a", "b"]).unwrap())
            .collect(),
    )
    .unwrap();
    let target = Schema::with_relations(
        (0..n)
            .map(|i| RelSchema::untyped(format!("T{i}"), vec!["a", "b"]).unwrap())
            .collect(),
    )
    .unwrap();
    let st_tgds = (0..n)
        .map(|i| {
            StTgd::new(
                vec![Atom::new(
                    format!("S{i}"),
                    vec![Term::var("x"), Term::var("y")],
                )],
                vec![Atom::new(
                    format!("T{i}"),
                    vec![Term::var("x"), Term::var("z")],
                )],
            )
        })
        .collect();
    Mapping::new(source, target, st_tgds).unwrap()
}

fn bench_analyze(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_analyze");

    for n in [10usize, 100, 1000] {
        let m = copy_mapping(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("no_redundancy", n), &m, |b, m| {
            b.iter(|| {
                analyze_with(
                    black_box(m),
                    None,
                    AnalyzeOptions {
                        redundancy: false,
                        ..Default::default()
                    },
                )
            })
        });
    }

    // Full analysis (including the per-tgd chase for DEX105) on the
    // sizes where a single iteration stays sub-second.
    for n in [10usize, 100] {
        let m = copy_mapping(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("full", n), &m, |b, m| {
            b.iter(|| analyze_with(black_box(m), None, AnalyzeOptions::default()))
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_analyze
}
criterion_main!(benches);
