//! E18 — static chase-cost analysis: how fast, and how tight.
//!
//! Two questions about the cost pass (DESIGN.md §12):
//!
//! * **speed** — `cost_section` must be cheap enough to run on every
//!   save, like the rest of the lint pipeline (E13). Benched on `n`
//!   independent copy rules and on an `n`-deep target-tgd chain (the
//!   worst case for the rank computation) at n = 10/100/1000.
//! * **tightness** — the bounds are worst cases; how far above an
//!   actual chase do they land? Measured as predicted/actual ratios on
//!   two concrete exchanges (a null-inventing copy mapping and a
//!   3-deep chain) at measured source statistics.
//!
//! `DEX_E18_JSON=path cargo bench -p dex-bench --bench e18_cost` skips
//! criterion and writes the CI smoke artifact instead: one JSON object
//! with the analysis time per tgd and the per-metric tightness ratios.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use dex_analyze::cost_section;
use dex_chase::exchange;
use dex_logic::{parse_mapping, Mapping};
use dex_relational::{Bound, Instance, SourceStats, Value};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

/// `n` independent null-inventing copy rules `S{i}(x, y) → T{i}(x, z)`.
fn copy_mapping(n: usize) -> Mapping {
    let mut text = String::new();
    for i in 0..n {
        let _ = writeln!(text, "source S{i}(a, b);");
        let _ = writeln!(text, "target T{i}(a, b);");
    }
    for i in 0..n {
        let _ = writeln!(text, "S{i}(x, y) -> T{i}(x, z);");
    }
    parse_mapping(&text).expect("copy mapping parses")
}

/// One st-tgd feeding an `n`-deep target-tgd chain
/// `T{i}(x, y) → T{i+1}(y, z)`: every link invents a null, so the rank
/// computation walks the whole dependency graph and the existential
/// strata go as deep as they can.
fn chain_mapping(n: usize) -> Mapping {
    let mut text = String::from("source S(a, b);\n");
    for i in 0..n {
        let _ = writeln!(text, "target T{i}(a, b);");
    }
    text.push_str("S(x, y) -> T0(x, z);\n");
    for i in 0..n.saturating_sub(1) {
        let _ = writeln!(text, "T{i}(x, y) -> T{}(y, z);", i + 1);
    }
    parse_mapping(&text).expect("chain mapping parses")
}

fn bench_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("e18_cost");
    for n in [10usize, 100, 1000] {
        group.throughput(Throughput::Elements(n as u64));
        let copy = copy_mapping(n);
        let stats = SourceStats::uniform(1000);
        group.bench_with_input(BenchmarkId::new("copy", n), &copy, |b, m| {
            b.iter(|| cost_section(black_box(m), black_box(&stats)))
        });
        let chain = chain_mapping(n);
        group.bench_with_input(BenchmarkId::new("chain", n), &chain, |b, m| {
            b.iter(|| cost_section(black_box(m), black_box(&stats)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_cost
}

/// Populate every source relation of `m` with `rows` two-column rows.
fn populate(m: &Mapping, rows: usize) -> Instance {
    let mut src = Instance::empty(m.source().clone());
    let names: Vec<String> = m
        .source()
        .relations()
        .map(|r| r.name().to_string())
        .collect();
    for name in names {
        for k in 0..rows {
            let t: dex_relational::Tuple = vec![
                Value::str(format!("a{k}")),
                Value::str(format!("b{}", k % 3)),
            ]
            .into();
            src.insert(&name, t).expect("fixture row inserts");
        }
    }
    src
}

/// predicted/actual, with `actual == 0` mapped onto an exact 1.0 when
/// the prediction is also 0 (nothing predicted, nothing happened).
fn ratio(predicted: Bound, actual: u64) -> f64 {
    match (predicted, actual) {
        (Bound::Finite(0), 0) => 1.0,
        (Bound::Finite(p), 0) => p as f64,
        (Bound::Finite(p), a) => p as f64 / a as f64,
        (Bound::Unbounded, _) => f64::INFINITY,
    }
}

/// Tightness ratios for one mapping at measured statistics, as JSON
/// object fields.
fn tightness(m: &Mapping, rows: usize) -> String {
    let src = populate(m, rows);
    let stats = SourceStats::measure(&src);
    let bounds = cost_section(m, &stats).bounds;
    let r = exchange(m, &src).expect("fixture exchange succeeds");
    format!(
        "{{\"firings\": {:.2}, \"nulls\": {:.2}, \"tuples\": {:.2}}}",
        ratio(bounds.firings, r.firings as u64),
        ratio(bounds.nulls, r.nulls_created as u64),
        ratio(bounds.tuples, r.target.fact_count() as u64),
    )
}

/// The CI smoke artifact: median-of-9 analysis time per tgd on the
/// 1000-rule shapes, plus predicted/actual tightness on two concrete
/// exchanges. Everything criterion would measure, at one data point,
/// in machine-readable form.
fn smoke(path: &str) {
    let n = 1000usize;
    let stats = SourceStats::uniform(1000);
    let mut us_per_tgd = Vec::new();
    for m in [copy_mapping(n), chain_mapping(n)] {
        let mut samples: Vec<f64> = (0..9)
            .map(|_| {
                let t = Instant::now();
                black_box(cost_section(black_box(&m), black_box(&stats)));
                t.elapsed().as_secs_f64() * 1e6 / n as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        us_per_tgd.push(samples[samples.len() / 2]);
    }

    let json = format!(
        "{{\n  \"experiment\": \"e18_cost\",\n  \"tgds\": {n},\n  \
         \"analysis_us_per_tgd\": {{\"copy\": {:.3}, \"chain\": {:.3}}},\n  \
         \"tightness\": {{\"copy\": {}, \"chain\": {}}}\n}}\n",
        us_per_tgd[0],
        us_per_tgd[1],
        tightness(&copy_mapping(4), 50),
        tightness(&chain_mapping(3), 50),
    );
    std::fs::write(path, &json).expect("write smoke artifact");
    println!("e18 smoke metrics -> {path}\n{json}");
}

fn main() {
    if let Ok(path) = std::env::var("DEX_E18_JSON") {
        smoke(&path);
        return;
    }
    benches();
}
