//! E1 — chase scaling on the paper's Example 1 (Emp → Manager):
//! standard vs oblivious chase, 10² … 10⁴ employees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dex_bench::{emp_mapping, emps};
use dex_chase::{
    exchange_governed, exchange_with, Budget, ChaseOptions, ChaseVariant, Governor, Matcher,
};
use std::hint::black_box;

/// A budget generous enough to never trip on these workloads, so the
/// `*_governed` arms measure pure bookkeeping overhead (E14 in
/// EXPERIMENTS.md). No memory cap: byte accounting is priced
/// separately by `standard_governed_mem`.
fn generous_budget() -> Budget {
    Budget::unlimited()
        .with_deadline(std::time::Duration::from_secs(3600))
        .with_max_rounds(u64::MAX / 2)
        .with_max_tuples(u64::MAX / 2)
        .with_max_nulls(u64::MAX / 2)
}

/// Short measurement windows: the suite's job is shape, not
/// publication-grade confidence intervals; this keeps the full
/// `cargo bench --workspace` run to a couple of minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

fn bench_chase(c: &mut Criterion) {
    let mapping = emp_mapping();
    let mut group = c.benchmark_group("e1_chase");
    for n in [100usize, 1_000, 10_000] {
        let src = emps(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("standard", n), &src, |b, src| {
            b.iter(|| {
                exchange_with(black_box(&mapping), black_box(src), ChaseOptions::default()).unwrap()
            })
        });
        // Same run under an engaged (but never-tripping) governor: the
        // gap to `standard` is the cost of resource governance.
        group.bench_with_input(BenchmarkId::new("standard_governed", n), &src, |b, src| {
            b.iter(|| {
                let gov = Governor::new(generous_budget());
                exchange_governed(
                    black_box(&mapping),
                    black_box(src),
                    ChaseOptions::default(),
                    &gov,
                )
                .unwrap()
            })
        });
        // With the approximate-memory cap too, which adds per-firing
        // byte accounting on top of the counter checks.
        group.bench_with_input(
            BenchmarkId::new("standard_governed_mem", n),
            &src,
            |b, src| {
                b.iter(|| {
                    let gov = Governor::new(generous_budget().with_max_memory(u64::MAX / 2));
                    exchange_governed(
                        black_box(&mapping),
                        black_box(src),
                        ChaseOptions::default(),
                        &gov,
                    )
                    .unwrap()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("oblivious", n), &src, |b, src| {
            b.iter(|| {
                exchange_with(
                    black_box(&mapping),
                    black_box(src),
                    ChaseOptions {
                        variant: ChaseVariant::Oblivious,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
        // The retained full-scan oracle — the pre-index implementation —
        // for the speedup comparison (quadratic, so it dominates the
        // suite's runtime at 10⁴ already).
        group.bench_with_input(BenchmarkId::new("standard_scan", n), &src, |b, src| {
            b.iter(|| {
                exchange_with(
                    black_box(&mapping),
                    black_box(src),
                    ChaseOptions {
                        matcher: Matcher::Scan,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_chase
}
criterion_main!(benches);
