//! E6 — the update-policy ablation (paper §3's four options): put
//! latency per policy for a batch of new view rows, plus the
//! data-preservation score under churn.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dex_bench::{persons, persons_mapping};
use dex_relational::{Name, Relation, Value};
use dex_rellens::{Environment, InstanceLens, RelLensExpr, UpdatePolicy};
use std::hint::black_box;

/// Short measurement windows: the suite's job is shape, not
/// publication-grade confidence intervals; this keeps the full
/// `cargo bench --workspace` run to a couple of minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

fn lens(policy: UpdatePolicy) -> InstanceLens {
    let mut env = Environment::new();
    env.insert(Name::new("session_city"), Value::str("Sydney"));
    InstanceLens::new(
        RelLensExpr::base("Person1").project(vec!["id", "name", "age"], vec![("city", policy)]),
        persons_mapping().source().clone(),
        env,
    )
    .unwrap()
}

fn policies() -> Vec<(&'static str, UpdatePolicy)> {
    vec![
        ("null", UpdatePolicy::Null),
        ("const", UpdatePolicy::Const("X".into())),
        ("env", UpdatePolicy::Env(Name::new("session_city"))),
        ("fd", UpdatePolicy::fd_or_null(vec!["name"])),
    ]
}

fn bench_policy_put(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_policies/put_batch");
    let db = persons(1_000);
    for (label, policy) in policies() {
        let l = lens(policy);
        // A view with 200 brand-new rows (policy fills fire for each).
        let mut view: Relation = l.try_get(&db).unwrap();
        for i in 0..200i64 {
            view.insert(dex_relational::tuple![
                10_000 + i,
                format!("new{i}").as_str(),
                33i64
            ])
            .unwrap();
        }
        group.throughput(Throughput::Elements(200));
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(view, db.clone()),
            |b, (view, db)| b.iter(|| l.try_put(black_box(view), black_box(db)).unwrap()),
        );
    }
    group.finish();
}

/// Data preservation under churn, printed as a Criterion-adjacent
/// report (the “who wins” series for EXPERIMENTS.md).
fn report_preservation(c: &mut Criterion) {
    // One measured row per policy: delete 100 rows from the view, put,
    // re-insert them, put again; count exact ground-truth rows restored.
    let db = persons(500);
    let mut summary = String::new();
    for (label, policy) in policies() {
        let l = lens(policy);
        let view = l.try_get(&db).unwrap();
        let mut churned = view.clone();
        let victims: Vec<_> = churned.iter().take(100).collect();
        for v in &victims {
            churned.remove(v);
        }
        let without = l.try_put(&churned, &db).unwrap();
        let back = l.try_put(&view, &without).unwrap();
        let preserved = back
            .relation("Person1")
            .unwrap()
            .iter()
            .filter(|t| db.relation("Person1").unwrap().contains(t))
            .count();
        summary.push_str(&format!("policy={label} preserved={preserved}/500\n"));
    }
    println!("--- e6 data-preservation score (churn of 100 rows) ---\n{summary}");
    // Keep criterion happy with a trivial measurement tied to the run.
    c.bench_function("e6_policies/preservation_report", |b| {
        b.iter(|| black_box(&summary).len())
    });
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_policy_put, report_preservation
}
criterion_main!(benches);
