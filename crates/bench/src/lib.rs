//! Workload generators shared by the Criterion benchmarks.
//!
//! One bench target per experiment of DESIGN.md §4. All generators are
//! deterministic (seeded `StdRng`), so bench runs are reproducible.

use dex_logic::{parse_mapping, Mapping};
use dex_relational::{tuple, Instance, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fixed seed for every generator.
pub const SEED: u64 = 0x0DEC_0DE5;

/// The Example 1 mapping: `Emp(x) → ∃y Manager(x, y)`.
pub fn emp_mapping() -> Mapping {
    parse_mapping(
        r#"
        source Emp(name);
        target Manager(emp, mgr);
        Emp(x) -> Manager(x, y);
        "#,
    )
    .unwrap()
}

/// A source instance with `n` employees.
pub fn emps(n: usize) -> Instance {
    let m = emp_mapping();
    let mut inst = Instance::empty(m.source().clone());
    for i in 0..n {
        inst.insert("Emp", tuple![format!("emp{i}").as_str()])
            .unwrap();
    }
    inst
}

/// The Figure 1 (upper diagram) mapping.
pub fn university_mapping() -> Mapping {
    parse_mapping(
        r#"
        source Takes(name, course);
        target Student(id, name);
        target Assgn(name, course);
        Takes(x, y) -> Student(z, x) & Assgn(x, y);
        "#,
    )
    .unwrap()
}

/// `n` Takes facts over `n/4 + 1` students and 17 courses.
pub fn takes(n: usize) -> Instance {
    let m = university_mapping();
    let mut rng = StdRng::seed_from_u64(SEED);
    let students = n / 4 + 1;
    let mut inst = Instance::empty(m.source().clone());
    while inst.fact_count() < n {
        let s = rng.gen_range(0..students);
        let c = rng.gen_range(0..17);
        inst.insert(
            "Takes",
            tuple![format!("s{s}").as_str(), format!("course{c}").as_str()],
        )
        .unwrap();
    }
    inst
}

/// The Example 2 pair of mappings (Emp→Manager, Manager→Boss/SelfMngr).
pub fn example2_mappings() -> (Mapping, Mapping) {
    let m23 = parse_mapping(
        r#"
        source Manager(emp, mgr);
        target Boss(emp, mgr);
        target SelfMngr(emp);
        Manager(x, y) -> Boss(x, y);
        Manager(x, x) -> SelfMngr(x);
        "#,
    )
    .unwrap();
    (emp_mapping(), m23)
}

/// A pair of full copy-chains of length `k` relations each, for
/// composition-scaling benches: A0→A1→…→Ak.
pub fn chain_mappings(k: usize) -> Vec<Mapping> {
    (0..k)
        .map(|i| {
            parse_mapping(&format!(
                "source A{i}(v, w);\ntarget A{}(v, w);\nA{i}(x, y) -> A{}(x, y);",
                i + 1,
                i + 1
            ))
            .unwrap()
        })
        .collect()
}

/// The Example 3 mapping (Father/Mother → Parent).
pub fn parents_mapping() -> Mapping {
    parse_mapping(
        r#"
        source Father(p, c);
        source Mother(p, c);
        target Parent(p, c);
        Father(x, y) -> Parent(x, y);
        Mother(x, y) -> Parent(x, y);
        "#,
    )
    .unwrap()
}

/// `n` parentage facts split between Father and Mother.
pub fn parents(n: usize) -> Instance {
    let m = parents_mapping();
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut inst = Instance::empty(m.source().clone());
    for i in 0..n {
        let rel = if rng.gen_bool(0.5) {
            "Father"
        } else {
            "Mother"
        };
        inst.insert(
            rel,
            tuple![format!("p{i}").as_str(), format!("c{i}").as_str()],
        )
        .unwrap();
    }
    inst
}

/// The Person1/Person2 mapping from the paper's introduction.
pub fn persons_mapping() -> Mapping {
    parse_mapping(
        r#"
        source Person1(id, name, age, city);
        target Person2(id, name, salary, zipcode);
        Person1(i, n, a, c) -> Person2(i, n, s, z);
        "#,
    )
    .unwrap()
}

/// `n` Person1 rows over 31 cities.
pub fn persons(n: usize) -> Instance {
    let m = persons_mapping();
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut inst = Instance::empty(m.source().clone());
    for i in 0..n {
        let city = rng.gen_range(0..31);
        inst.insert(
            "Person1",
            Tuple::new(vec![
                Value::int(i as i64),
                Value::str(format!("name{i}")),
                Value::int(rng.gen_range(18..80)),
                Value::str(format!("city{city}")),
            ]),
        )
        .unwrap();
    }
    inst
}

/// An instance whose Manager relation has `n` hub facts with the given
/// fraction of null spokes (the rest ground) — the E10 core workload.
pub fn null_spokes(n: usize, null_fraction: f64) -> Instance {
    let m = emp_mapping();
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut inst = Instance::empty(m.target().clone());
    let mut null_id = 0u64;
    for i in 0..n {
        let hub = format!("hub{}", i / 8);
        let spoke = if rng.gen_bool(null_fraction) {
            null_id += 1;
            Value::Null(dex_relational::NullId(null_id))
        } else {
            Value::str(format!("spoke{i}"))
        };
        inst.insert("Manager", Tuple::new(vec![Value::str(hub), spoke]))
            .unwrap();
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(takes(100), takes(100));
        assert_eq!(persons(50), persons(50));
        assert_eq!(parents(40), parents(40));
        assert_eq!(null_spokes(30, 0.5), null_spokes(30, 0.5));
    }

    #[test]
    fn generators_hit_requested_sizes() {
        assert_eq!(emps(123).fact_count(), 123);
        assert_eq!(takes(100).fact_count(), 100);
        assert_eq!(persons(50).fact_count(), 50);
        assert_eq!(parents(40).fact_count(), 40);
        assert_eq!(null_spokes(30, 0.3).fact_count(), 30);
    }

    #[test]
    fn chain_mappings_compose_structurally() {
        let ms = chain_mappings(3);
        assert_eq!(ms.len(), 3);
        for pair in ms.windows(2) {
            assert_eq!(pair[0].target(), pair[1].source());
        }
    }
}
