//! Offline stand-in for `crossbeam`.
//!
//! Implements `crossbeam::scope` on top of `std::thread::scope`
//! (stable since 1.63), matching the crossbeam 0.8 call shape used
//! here: the outer closure receives a `&Scope`, `spawn` closures
//! receive a `&Scope` argument, and both `scope` and `join` return
//! `std::thread::Result`.

/// Scoped-thread handle mirroring `crossbeam_utils::thread::Scope`.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> std::thread::Result<T> {
        self.0.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle(self.0.spawn(move || f(&scope)))
    }
}

/// Run `f` with a scope in which borrowing, scoped threads can be
/// spawned. All spawned threads are joined before this returns.
///
/// Unlike real crossbeam, a panic in an *unjoined* child propagates
/// out of `scope` (std semantics) instead of surfacing as `Err`;
/// every caller in this workspace joins its handles, so the
/// difference is unobservable here.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope(s))))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_spawn_and_join() {
        let data = vec![1, 2, 3, 4];
        let total: i32 = super::scope(|scope| {
            let handles: Vec<_> = data
                .iter()
                .map(|&x| scope.spawn(move |_| x * 10))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn child_panic_is_returned_by_join() {
        let caught = super::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            h.join().is_err()
        })
        .unwrap();
        assert!(caught);
    }
}
