//! Offline stand-in for `rand`.
//!
//! Provides the subset this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over half-open
//! integer ranges, and `Rng::gen_bool`. Deterministic splitmix64
//! core; NOT cryptographic and NOT stream-compatible with the real
//! crate — workloads seeded here are reproducible against *this*
//! stand-in only.

use std::ops::Range;

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Half-open ranges that can be sampled uniformly. The element type
/// is a trait parameter (as in real rand) so integer literals in the
/// range adapt to the call site's expected type.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: i64 = a.gen_range(-5i64..100);
            assert_eq!(x, b.gen_range(-5i64..100));
            assert!((-5..100).contains(&x));
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
