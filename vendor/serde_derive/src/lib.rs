//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls against the workspace's
//! `serde` stand-in. Supports the shapes this repository actually uses:
//! non-generic structs (named, tuple, unit) and enums (unit, tuple and
//! struct variants), plus the `#[serde(skip)]` field attribute (skipped
//! on serialize, `Default::default()` on deserialize) — the same
//! behaviour real serde_derive gives those inputs, so switching back to
//! the genuine crates is source-compatible.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

struct Field {
    name: String, // empty for tuple fields
    skip: bool,
}

enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

/// Does a `#[...]` attribute group mark `#[serde(skip)]`?
fn attr_is_skip(group: &proc_macro::Group) -> bool {
    let mut it = group.stream().into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(i)), Some(TokenTree::Group(inner)))
            if i.to_string() == "serde" =>
        {
            inner
                .stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Consume leading attributes; report whether any was `#[serde(skip)]`.
fn skip_attrs(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut skip = false;
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.next() {
                    skip |= attr_is_skip(&g);
                }
            }
            _ => return skip,
        }
    }
}

/// Consume a `pub` / `pub(crate)` visibility if present.
fn skip_vis(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(it.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            it.next();
        }
    }
}

/// Consume tokens of a type up to a top-level comma (tracking `<`/`>`
/// depth — angle brackets are not token groups).
fn skip_type(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut depth = 0i32;
    while let Some(t) = it.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        it.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut out = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        let skip = skip_attrs(&mut it);
        skip_vis(&mut it);
        let Some(TokenTree::Ident(name)) = it.next() else {
            return out;
        };
        // consume `:`
        it.next();
        skip_type(&mut it);
        // consume the `,` if present
        it.next();
        out.push(Field {
            name: name.to_string(),
            skip,
        });
    }
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let mut out = Vec::new();
    let mut it = stream.into_iter().peekable();
    while it.peek().is_some() {
        let skip = skip_attrs(&mut it);
        skip_vis(&mut it);
        if it.peek().is_none() {
            break; // trailing comma
        }
        skip_type(&mut it);
        it.next(); // the comma
        out.push(Field {
            name: String::new(),
            skip,
        });
    }
    out
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut out = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        skip_attrs(&mut it);
        let Some(TokenTree::Ident(name)) = it.next() else {
            return out;
        };
        let shape = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = parse_tuple_fields(g.stream());
                it.next();
                Shape::Tuple(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // consume the `,` if present
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            it.next();
        }
        out.push(Variant {
            name: name.to_string(),
            shape,
        });
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    skip_attrs(&mut it);
    skip_vis(&mut it);
    let kind = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde stand-in derive: expected struct/enum, got {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde stand-in derive: expected item name, got {other:?}"),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive: generic types are not supported (`{name}`)");
    }
    match kind.as_str() {
        "struct" => {
            let shape = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(g.stream()))
                }
                _ => Shape::Unit,
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let variants = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde stand-in derive: bad enum body {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde stand-in derive: unsupported item kind `{other}`"),
    }
}

const P: &str = "::serde::__private";

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => (name, ser_struct_body(shape)),
        Item::Enum { name, variants } => (name, ser_enum_body(name, variants)),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn ser_err() -> String {
    "map_err(|e| <S::Error as ::serde::ser::Error>::custom(e))?".to_string()
}

fn ser_struct_body(shape: &Shape) -> String {
    match shape {
        Shape::Unit => "s.serialize_unit()".into(),
        Shape::Tuple(fields) if fields.len() == 1 && !fields[0].skip => {
            // Newtype struct: serialize the inner value transparently.
            format!(
                "let c = {P}::to_content(&self.0).{e};\n s.serialize_content(c)",
                e = ser_err()
            )
        }
        Shape::Tuple(fields) => {
            let mut pushes = String::new();
            for (i, f) in fields.iter().enumerate() {
                if f.skip {
                    continue;
                }
                pushes.push_str(&format!(
                    "items.push({P}::to_content(&self.{i}).{e});\n",
                    e = ser_err()
                ));
            }
            format!(
                "let mut items = Vec::new();\n{pushes}\
                 s.serialize_content({P}::Content::Seq(items))"
            )
        }
        Shape::Named(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "entries.push(({P}::Content::Str(\"{n}\".to_string()), \
                     {P}::to_content(&self.{n}).{e}));\n",
                    n = f.name,
                    e = ser_err()
                ));
            }
            format!(
                "let mut entries = Vec::new();\n{pushes}\
                 s.serialize_content({P}::Content::Map(entries))"
            )
        }
    }
}

fn ser_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => arms.push_str(&format!(
                "{name}::{vn} => s.serialize_content({P}::Content::Str(\"{vn}\".to_string())),\n"
            )),
            Shape::Tuple(fields) => {
                let binders: Vec<String> =
                    (0..fields.len()).map(|i| format!("__f{i}")).collect();
                let inner = if fields.len() == 1 {
                    format!("{P}::to_content(__f0).{e}", e = ser_err())
                } else {
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("{P}::to_content({b}).{e}", e = ser_err()))
                        .collect();
                    format!("{P}::Content::Seq(vec![{}])", items.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{vn}({binds}) => {{\n\
                         let inner = {inner};\n\
                         s.serialize_content({P}::Content::Map(vec![\
                             ({P}::Content::Str(\"{vn}\".to_string()), inner)]))\n\
                     }},\n",
                    binds = binders.join(", ")
                ));
            }
            Shape::Named(fields) => {
                let binds: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{n}: __{n}", n = f.name))
                    .collect();
                let mut pushes = String::new();
                for f in fields.iter().filter(|f| !f.skip) {
                    pushes.push_str(&format!(
                        "entries.push(({P}::Content::Str(\"{n}\".to_string()), \
                         {P}::to_content(__{n}).{e}));\n",
                        n = f.name,
                        e = ser_err()
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{vn} {{ {binds} }} => {{\n\
                         let mut entries = Vec::new();\n{pushes}\
                         s.serialize_content({P}::Content::Map(vec![\
                             ({P}::Content::Str(\"{vn}\".to_string()), \
                              {P}::Content::Map(entries))]))\n\
                     }},\n",
                    binds = binds.join(", ")
                ));
            }
        }
    }
    format!("match self {{\n{arms}\n}}")
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => (name, de_struct_body(name, shape)),
        Item::Enum { name, variants } => (name, de_enum_body(name, variants)),
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn de_err() -> String {
    "map_err(|e| <D::Error as ::serde::de::Error>::custom(e))?".to_string()
}

fn de_bad(expected: &str) -> String {
    format!(
        "return Err(<D::Error as ::serde::de::Error>::custom(\
         format!(\"expected {expected}, got {{other:?}}\")))"
    )
}

/// Build a constructor expression for `shape`, reading from the content
/// bound to `seq` / `map` variables established by the surrounding code.
fn de_named_fields(path: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!("{n}: Default::default(),\n", n = f.name));
        } else {
            inits.push_str(&format!(
                "{n}: {P}::from_content({P}::take_field(&mut map, \"{n}\").{e}).{e},\n",
                n = f.name,
                e = de_err()
            ));
        }
    }
    format!("{path} {{\n{inits}}}")
}

fn de_tuple_fields(path: &str, fields: &[Field]) -> String {
    let mut args = String::new();
    for f in fields {
        if f.skip {
            args.push_str("Default::default(),\n");
        } else {
            args.push_str(&format!(
                "{P}::from_content(\
                 seq.next().ok_or_else(|| <D::Error as ::serde::de::Error>::custom(\
                 \"sequence too short\"))?).{e},\n",
                e = de_err()
            ));
        }
    }
    format!("{path}({args})")
}

fn de_struct_body(name: &str, shape: &Shape) -> String {
    match shape {
        Shape::Unit => format!(
            "match d.take_content()? {{\n\
                 {P}::Content::Null => Ok({name}),\n\
                 other => {bad},\n\
             }}",
            bad = de_bad("null")
        ),
        Shape::Tuple(fields) if fields.len() == 1 && !fields[0].skip => format!(
            "let c = d.take_content()?;\n\
             Ok({name}({P}::from_content(c).{e}))",
            e = de_err()
        ),
        Shape::Tuple(fields) => format!(
            "match d.take_content()? {{\n\
                 {P}::Content::Seq(items) => {{\n\
                     let mut seq = items.into_iter();\n\
                     Ok({ctor})\n\
                 }}\n\
                 other => {bad},\n\
             }}",
            ctor = de_tuple_fields(name, fields),
            bad = de_bad("sequence")
        ),
        Shape::Named(fields) => format!(
            "match d.take_content()? {{\n\
                 {P}::Content::Map(mut map) => Ok({ctor}),\n\
                 other => {bad},\n\
             }}",
            ctor = de_named_fields(name, fields),
            bad = de_bad("map")
        ),
    }
}

fn de_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => unit_arms.push_str(&format!(
                "\"{vn}\" => Ok({name}::{vn}),\n"
            )),
            Shape::Tuple(fields) if fields.len() == 1 && !fields[0].skip => {
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => Ok({name}::{vn}({P}::from_content(inner).{e})),\n",
                    e = de_err()
                ));
            }
            Shape::Tuple(fields) => tagged_arms.push_str(&format!(
                "\"{vn}\" => match inner {{\n\
                     {P}::Content::Seq(items) => {{\n\
                         let mut seq = items.into_iter();\n\
                         Ok({ctor})\n\
                     }}\n\
                     other => {bad},\n\
                 }},\n",
                ctor = de_tuple_fields(&format!("{name}::{vn}"), fields),
                bad = de_bad("sequence")
            )),
            Shape::Named(fields) => tagged_arms.push_str(&format!(
                "\"{vn}\" => match inner {{\n\
                     {P}::Content::Map(mut map) => Ok({ctor}),\n\
                     other => {bad},\n\
                 }},\n",
                ctor = de_named_fields(&format!("{name}::{vn}"), fields),
                bad = de_bad("map")
            )),
        }
    }
    format!(
        "match d.take_content()? {{\n\
             {P}::Content::Str(tag) => match tag.as_str() {{\n\
                 {unit_arms}\n\
                 other => Err(<D::Error as ::serde::de::Error>::custom(\
                     format!(\"unknown unit variant `{{other}}` for {name}\"))),\n\
             }},\n\
             {P}::Content::Map(mut map) if map.len() == 1 => {{\n\
                 let (tag, inner) = map.remove(0);\n\
                 let tag = match tag {{\n\
                     {P}::Content::Str(s) => s,\n\
                     other => {badtag},\n\
                 }};\n\
                 match tag.as_str() {{\n\
                     {tagged_arms}\n\
                     other => Err(<D::Error as ::serde::de::Error>::custom(\
                         format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }}\n\
             }}\n\
             other => {bad},\n\
         }}",
        badtag = de_bad("string variant tag"),
        bad = de_bad("enum value")
    )
}
