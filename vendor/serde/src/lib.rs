//! Offline stand-in for the `serde` crate.
//!
//! The build sandbox for this repository has no access to crates.io, so
//! the workspace patches `serde` (and friends) to these minimal local
//! implementations (see `[patch.crates-io]` in the root `Cargo.toml`).
//! The API surface mirrors the subset of real serde used by the
//! workspace: the `Serialize`/`Deserialize` traits, plain `#[derive]`
//! (no attributes except `#[serde(skip)]`), and a self-describing data
//! model consumed by the `serde_json` stand-in.
//!
//! Everything in the workspace is written against the *real* serde API,
//! so deleting the `[patch.crates-io]` section restores the genuine
//! crates with no source changes.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Serialization half.
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Deserialization half.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A (drastically simplified) serializer: values are lowered to the
/// [`__private::Content`] tree, which data formats then render.
pub trait Serializer: Sized {
    type Ok;
    type Error: ser::Error;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Escape hatch used by the container impls and by derived code:
    /// hand a fully built content tree to the serializer.
    fn serialize_content(self, content: __private::Content) -> Result<Self::Ok, Self::Error>;
}

/// A (drastically simplified) deserializer: formats parse into a
/// [`__private::Content`] tree which `Deserialize` impls consume.
pub trait Deserializer<'de>: Sized {
    type Error: de::Error;

    /// Take the whole input as a content tree.
    fn take_content(self) -> Result<__private::Content, Self::Error>;
}

pub mod ser {
    use std::fmt;

    /// Error constructor required of serializer error types.
    pub trait Error: Sized + fmt::Debug + fmt::Display {
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

pub mod de {
    use std::fmt;

    /// Error constructor required of deserializer error types.
    pub trait Error: Sized + fmt::Debug + fmt::Display {
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

/// Implementation details shared with `serde_derive`-generated code and
/// the `serde_json` stand-in. Not part of the mirrored serde API.
pub mod __private {
    use super::{de, ser, Deserialize, Deserializer, Serialize, Serializer};
    use std::fmt;

    /// The self-describing data model (deliberately JSON-shaped).
    #[derive(Clone, Debug, PartialEq)]
    pub enum Content {
        Null,
        Bool(bool),
        I64(i64),
        U64(u64),
        F64(f64),
        Str(String),
        Seq(Vec<Content>),
        /// Key-value pairs in insertion order; formats may require the
        /// keys to be strings.
        Map(Vec<(Content, Content)>),
    }

    /// Error type for content-tree (de)serialization.
    #[derive(Debug)]
    pub struct ContentError(pub String);

    impl fmt::Display for ContentError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl ser::Error for ContentError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            ContentError(msg.to_string())
        }
    }

    impl de::Error for ContentError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            ContentError(msg.to_string())
        }
    }

    /// Serializer producing a content tree. Infallible in practice.
    pub struct ContentSerializer;

    impl Serializer for ContentSerializer {
        type Ok = Content;
        type Error = ContentError;

        fn serialize_bool(self, v: bool) -> Result<Content, ContentError> {
            Ok(Content::Bool(v))
        }
        fn serialize_i64(self, v: i64) -> Result<Content, ContentError> {
            Ok(Content::I64(v))
        }
        fn serialize_u64(self, v: u64) -> Result<Content, ContentError> {
            Ok(Content::U64(v))
        }
        fn serialize_f64(self, v: f64) -> Result<Content, ContentError> {
            Ok(Content::F64(v))
        }
        fn serialize_str(self, v: &str) -> Result<Content, ContentError> {
            Ok(Content::Str(v.to_owned()))
        }
        fn serialize_unit(self) -> Result<Content, ContentError> {
            Ok(Content::Null)
        }
        fn serialize_content(self, content: Content) -> Result<Content, ContentError> {
            Ok(content)
        }
    }

    /// Deserializer reading from a content tree.
    pub struct ContentDeserializer(pub Content);

    impl<'de> Deserializer<'de> for ContentDeserializer {
        type Error = ContentError;

        fn take_content(self) -> Result<Content, ContentError> {
            Ok(self.0)
        }
    }

    /// Lower any `Serialize` value to a content tree.
    pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Result<Content, ContentError> {
        value.serialize(ContentSerializer)
    }

    /// Rebuild a `Deserialize` value from a content tree.
    pub fn from_content<'de, T: Deserialize<'de>>(content: Content) -> Result<T, ContentError> {
        T::deserialize(ContentDeserializer(content))
    }

    /// Pull the value for `key` out of a struct map (derived code).
    pub fn take_field(
        map: &mut Vec<(Content, Content)>,
        key: &str,
    ) -> Result<Content, ContentError> {
        let pos = map
            .iter()
            .position(|(k, _)| matches!(k, Content::Str(s) if s == key))
            .ok_or_else(|| ContentError(format!("missing field `{key}`")))?;
        Ok(map.remove(pos).1)
    }
}

use __private::{to_content, Content};

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_i64(*self as i64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.take_content()? {
                    Content::I64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    other => Err(de::Error::custom(format_args!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_u64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.take_content()? {
                    Content::U64(v) => Ok(v as $t),
                    Content::I64(v) if v >= 0 => Ok(v as $t),
                    other => Err(de::Error::custom(format_args!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format_args!(
                "expected bool, got {other:?}"
            ))),
        }
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}
impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::F64(v) => Ok(v),
            Content::I64(v) => Ok(v as f64),
            Content::U64(v) => Ok(v as f64),
            other => Err(de::Error::custom(format_args!(
                "expected float, got {other:?}"
            ))),
        }
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}
impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Str(s) => Ok(s),
            other => Err(de::Error::custom(format_args!(
                "expected string, got {other:?}"
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.to_string())
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_unit()
    }
}
impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Null => Ok(()),
            other => Err(de::Error::custom(format_args!(
                "expected null, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_unit(),
            Some(v) => {
                let c = to_content(v).map_err(ser_err::<S>)?;
                s.serialize_content(c)
            }
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Null => Ok(None),
            c => Ok(Some(
                __private::from_content(c).map_err(de_err::<'de, D>)?,
            )),
        }
    }
}

fn ser_err<S: Serializer>(e: __private::ContentError) -> S::Error {
    ser::Error::custom(e)
}
fn de_err<'de, D: Deserializer<'de>>(e: __private::ContentError) -> D::Error {
    de::Error::custom(e)
}

fn serialize_iter<S: Serializer, T: Serialize>(
    iter: impl Iterator<Item = T>,
    s: S,
) -> Result<S::Ok, S::Error> {
    let mut out = Vec::new();
    for item in iter {
        out.push(to_content(&item).map_err(ser_err::<S>)?);
    }
    s.serialize_content(Content::Seq(out))
}

fn expect_seq<'de, D: Deserializer<'de>>(d: D) -> Result<Vec<Content>, D::Error> {
    match d.take_content()? {
        Content::Seq(v) => Ok(v),
        other => Err(de::Error::custom(format_args!(
            "expected sequence, got {other:?}"
        ))),
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        serialize_iter(self.iter(), s)
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        expect_seq(d)?
            .into_iter()
            .map(|c| __private::from_content(c).map_err(de_err::<'de, D>))
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        serialize_iter(self.iter(), s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<[T]> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(d)?.into_boxed_slice())
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Box::new(T::deserialize(d)?))
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        serialize_iter(self.iter(), s)
    }
}
impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        expect_seq(d)?
            .into_iter()
            .map(|c| __private::from_content(c).map_err(de_err::<'de, D>))
            .collect()
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut out = Vec::new();
        for (k, v) in self {
            out.push((
                to_content(k).map_err(ser_err::<S>)?,
                to_content(v).map_err(ser_err::<S>)?,
            ));
        }
        s.serialize_content(Content::Map(out))
    }
}
impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    Ok((
                        __private::from_content(k).map_err(de_err::<'de, D>)?,
                        __private::from_content(v).map_err(de_err::<'de, D>)?,
                    ))
                })
                .collect(),
            other => Err(de::Error::custom(format_args!(
                "expected map, got {other:?}"
            ))),
        }
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let out = vec![$(to_content(&self.$n).map_err(ser_err::<S>)?),+];
                s.serialize_content(Content::Seq(out))
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let seq = expect_seq(d)?;
                let mut it = seq.into_iter();
                Ok(($({
                    let _ = $n; // positional
                    __private::from_content(
                        it.next().ok_or_else(|| de::Error::custom("tuple too short"))?
                    ).map_err(de_err::<'de, D>)?
                },)+))
            }
        }
    )*};
}
serialize_tuple!((0 T0) (0 T0, 1 T1) (0 T0, 1 T1, 2 T2) (0 T0, 1 T1, 2 T2, 3 T3));

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl Serialize for std::time::Duration {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let c = Content::Map(vec![
            (Content::Str("secs".into()), Content::U64(self.as_secs())),
            (
                Content::Str("nanos".into()),
                Content::U64(self.subsec_nanos() as u64),
            ),
        ]);
        s.serialize_content(c)
    }
}
impl<'de> Deserialize<'de> for std::time::Duration {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Map(mut m) => {
                let secs: u64 = __private::from_content(
                    __private::take_field(&mut m, "secs").map_err(de_err::<'de, D>)?,
                )
                .map_err(de_err::<'de, D>)?;
                let nanos: u64 = __private::from_content(
                    __private::take_field(&mut m, "nanos").map_err(de_err::<'de, D>)?,
                )
                .map_err(de_err::<'de, D>)?;
                Ok(std::time::Duration::new(secs, nanos as u32))
            }
            other => Err(de::Error::custom(format_args!(
                "expected duration map, got {other:?}"
            ))),
        }
    }
}
