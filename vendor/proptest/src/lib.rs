//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the `proptest!` test
//! macro, `Strategy` with `prop_map`, integer-range / tuple / string
//! pattern / collection / `sample::select` strategies, `any::<bool>`,
//! `prop_oneof!`, and `prop_assert!`/`prop_assert_eq!`. Generation is
//! purely random (seeded per test name, deterministic); there is NO
//! shrinking and NO failure persistence — a failing case panics with
//! the generated inputs visible in the assertion message.

pub mod test_runner {
    /// Test-loop configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Deterministic splitmix64 RNG used to drive generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from the test name so every test
        /// sees a stable but distinct stream across runs.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values. Object-safe: `prop_map` is `Sized`-only.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Erase a strategy's concrete type (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Uniform choice among same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    /// String literals are regex-like patterns. Supported subset:
    /// concatenations of `[a-z0-9]`-style classes, `\PC` (printable),
    /// or literal chars, each optionally repeated `{m,n}`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    enum Unit {
        Class(Vec<(char, char)>),
        Literal(char),
    }

    fn parse_units(pattern: &str) -> Vec<(Unit, u32, u32)> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut units = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let unit = match chars[i] {
                '[' => {
                    let mut ranges = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated char class in {pattern:?}");
                    i += 1; // past ']'
                    Unit::Class(ranges)
                }
                '\\' if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') => {
                    // `\PC`: any printable character; we use printable
                    // ASCII, which is plenty adversarial for parsers.
                    i += 3;
                    Unit::Class(vec![(' ', '~')])
                }
                c => {
                    i += 1;
                    Unit::Literal(c)
                }
            };
            // Optional {m,n} repetition.
            let (lo, hi) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated repetition in {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("bad repetition bound"),
                        b.trim().parse().expect("bad repetition bound"),
                    ),
                    None => {
                        let n: u32 = body.trim().parse().expect("bad repetition bound");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            units.push((unit, lo, hi));
        }
        units
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (unit, lo, hi) in parse_units(pattern) {
            let count = lo + rng.below((hi - lo + 1) as u64) as u32;
            for _ in 0..count {
                match &unit {
                    Unit::Literal(c) => out.push(*c),
                    Unit::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|&(a, b)| (b as u64) - (a as u64) + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        for &(a, b) in ranges {
                            let span = (b as u64) - (a as u64) + 1;
                            if pick < span {
                                out.push(
                                    char::from_u32(a as u32 + pick as u32)
                                        .expect("invalid char range"),
                                );
                                break;
                            }
                            pick -= span;
                        }
                    }
                }
            }
        }
        out
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    fn pick_len(size: &Range<usize>, rng: &mut TestRng) -> usize {
        assert!(size.start < size.end, "empty size range");
        size.start + rng.below((size.end - size.start) as u64) as usize
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = pick_len(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            // Duplicate draws may land short of the target size; like
            // the minimum bound, that is treated as best-effort here.
            let len = pick_len(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let len = pick_len(&self.size, rng);
            (0..len)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Select<T: 'static>(&'static [T]);

    /// Uniform choice from a static slice.
    pub fn select<T: Clone + 'static>(options: &'static [T]) -> Select<T> {
        assert!(!options.is_empty(), "select over empty slice");
        Select(options)
    }

    impl<T: Clone + 'static> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    pub struct Any<A>(std::marker::PhantomData<A>);

    /// `any::<T>()`: the canonical strategy for `T`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(std::marker::PhantomData)
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }
}

pub use arbitrary::any;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Define property tests. Each `#[test] fn name(arg in strategy, ..)`
/// becomes a plain test that generates inputs for `cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                // Strategies are built once; values are drawn per case.
                $(let $arg = ($strat);)+
                for _ in 0..config.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&$arg, &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// `prop_assert!`: plain `assert!` (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0i64..10, pair in (0u8..4, 0u8..6)) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(pair.0 < 4 && pair.1 < 6);
        }

        #[test]
        fn collections(
            rows in crate::collection::btree_set((0u8..4, 0u8..6), 1..8),
            v in crate::collection::vec(0i64..5, 0..4),
        ) {
            prop_assert!(!rows.is_empty() && rows.len() < 8);
            prop_assert!(v.len() < 4);
        }

        #[test]
        fn patterns(s in "[a-z]{1,6}", junk in "\\PC{0,60}") {
            prop_assert!((1..=6).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(junk.len() <= 60);
        }

        #[test]
        fn oneof_and_any(n in prop_oneof![0i64..5, 100i64..105], b in any::<bool>()) {
            prop_assert!((0..5).contains(&n) || (100..105).contains(&n));
            let _ = b;
        }
    }
}
