//! Offline stand-in for `criterion`.
//!
//! Measures real wall-clock time with `std::time::Instant` and prints
//! mean/min/max per benchmark to stdout, but performs no statistical
//! analysis, outlier rejection, plotting, or baseline comparison.
//! Timing numbers are genuine; confidence intervals are not.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched inputs are grouped; accepted for API compatibility,
/// the stand-in times one batch element at a time regardless.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            samples: 20,
        }
    }
}

impl Criterion {
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up = t;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement = t;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.samples = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self, name, None, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name);
        run_benchmark(self.criterion, &id, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(self.criterion, &full, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark(
    config: &Criterion,
    id: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        config: config.clone(),
        samples: Vec::new(),
    };
    f(&mut b);
    b.report(id, throughput);
}

pub struct Bencher {
    config: Criterion,
    /// Mean nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `routine` end to end.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.config.warm_up || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        let per_sample = self.config.measurement.as_secs_f64() / self.config.samples as f64;
        let iters = ((per_sample / per_iter.max(1e-9)).ceil() as u64).max(1);

        self.samples.clear();
        for _ in 0..self.config.samples {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples
                .push(t.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }

    /// Time `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut measured = Duration::ZERO;
        while warm_start.elapsed() < self.config.warm_up || warm_iters == 0 {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            measured += t.elapsed();
            warm_iters += 1;
        }
        let per_iter = measured.as_secs_f64() / warm_iters as f64;

        let per_sample = self.config.measurement.as_secs_f64() / self.config.samples as f64;
        let iters = ((per_sample / per_iter.max(1e-9)).ceil() as u64).max(1);

        self.samples.clear();
        for _ in 0..self.config.samples {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                std::hint::black_box(routine(input));
                elapsed += t.elapsed();
            }
            self.samples
                .push(elapsed.as_secs_f64() * 1e9 / iters as f64);
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{id:<50} (no measurement)");
            return;
        }
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().cloned().fold(0.0f64, f64::max);
        let mut line = format!(
            "{id:<50} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
        if let Some(t) = throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let rate = count as f64 / (mean * 1e-9);
            line.push_str(&format!("  thrpt: {rate:.3e} {unit}/s"));
        }
        println!("{line}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a benchmark group: either `criterion_group!(name, t1, t2)`
/// or the long form with `name = ..; config = ..; targets = ..`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(3);
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(10));
        let input = 20u64;
        group.bench_with_input(BenchmarkId::new("sum", input), &input, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
        c.bench_function("top-level", |b| b.iter(|| 2 + 2));
    }
}
