//! Offline stand-in for `serde_json`.
//!
//! Implements the subset of the real crate used by this workspace:
//! [`Value`]/[`Number`]/[`Map`], [`to_string`], [`to_string_pretty`],
//! [`from_str`], and the [`json!`] macro (expression and flat-object
//! forms). Backed by the workspace's `serde` stand-in; see the README
//! at the workspace root for why these exist.

use serde::__private::{Content, ContentDeserializer, ContentError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl From<ContentError> for Error {
    fn from(e: ContentError) -> Self {
        Error(e.to_string())
    }
}

/// A JSON number (integer-preserving, like the real crate).
#[derive(Clone, Debug, PartialEq)]
pub struct Number(N);

#[derive(Clone, Debug, PartialEq)]
enum N {
    I64(i64),
    U64(u64),
    F64(f64),
}

impl Number {
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::I64(v) => Some(v),
            N::U64(v) => i64::try_from(v).ok(),
            N::F64(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::I64(v) => u64::try_from(v).ok(),
            N::U64(v) => Some(v),
            N::F64(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            N::I64(v) => Some(v as f64),
            N::U64(v) => Some(v as f64),
            N::F64(v) => Some(v),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::I64(v) => write!(f, "{v}"),
            N::U64(v) => write!(f, "{v}"),
            N::F64(v) => write!(f, "{v}"),
        }
    }
}

/// Sorted-key JSON object (the real crate's default `Map`).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Map<K: Ord = String, V = Value>(BTreeMap<K, V>);

impl Map {
    pub fn new() -> Self {
        Map(BTreeMap::new())
    }

    pub fn insert(&mut self, k: String, v: Value) -> Option<Value> {
        self.0.insert(k, v)
    }

    pub fn get(&self, k: &str) -> Option<&Value> {
        self.0.get(k)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> + '_ {
        self.0.iter()
    }

    pub fn contains_key(&self, k: &str) -> bool {
        self.0.contains_key(k)
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::collections::btree_map::IntoIter<String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Map(iter.into_iter().collect())
    }
}

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(n) => match n.0 {
                N::I64(v) => Content::I64(v),
                N::U64(v) => Content::U64(v),
                N::F64(v) => Content::F64(v),
            },
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(a) => Content::Seq(a.iter().map(Value::to_content).collect()),
            Value::Object(m) => Content::Map(
                m.iter()
                    .map(|(k, v)| (Content::Str(k.clone()), v.to_content()))
                    .collect(),
            ),
        }
    }

    fn from_content(c: Content) -> Result<Value, Error> {
        Ok(match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(b),
            Content::I64(v) => Value::Number(Number(N::I64(v))),
            Content::U64(v) => Value::Number(Number(N::U64(v))),
            Content::F64(v) => Value::Number(Number(N::F64(v))),
            Content::Str(s) => Value::String(s),
            Content::Seq(items) => Value::Array(
                items
                    .into_iter()
                    .map(Value::from_content)
                    .collect::<Result<_, _>>()?,
            ),
            Content::Map(entries) => {
                let mut m = Map::new();
                for (k, v) in entries {
                    let k = match k {
                        Content::Str(s) => s,
                        other => {
                            return Err(Error(format!("non-string object key {other:?}")))
                        }
                    };
                    m.insert(k, Value::from_content(v)?);
                }
                Value::Object(m)
            }
        })
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&render(&self.to_content(), None))
    }
}

impl Serialize for Value {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(self.to_content())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let c = d.take_content()?;
        Value::from_content(c).map_err(|e| serde::de::Error::custom(e))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Number(Number(N::I64(v)))
    }
}
impl From<&i64> for Value {
    fn from(v: &i64) -> Self {
        Value::from(*v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::from(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(Number(N::U64(v)))
    }
}
impl From<&u64> for Value {
    fn from(v: &u64) -> Self {
        Value::from(*v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::from(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number(N::F64(v)))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&bool> for Value {
    fn from(v: &bool) -> Self {
        Value::Bool(*v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Build a [`Value`] from an expression or a flat `{ "key": expr }`
/// object literal (the forms this workspace uses).
#[macro_export]
macro_rules! json {
    ({ $($k:literal : $v:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($k.to_string(), $crate::Value::from($v)); )*
        $crate::Value::Object(m)
    }};
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::Value::from($item)),* ])
    };
    (null) => { $crate::Value::Null };
    ($e:expr) => { $crate::Value::from($e) };
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let c = serde::__private::to_content(value)?;
    Ok(render(&c, None))
}

/// Serialize to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let c = serde::__private::to_content(value)?;
    Ok(render(&c, Some(0)))
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(Value::from_content(serde::__private::to_content(value)?)?)
}

/// Deserialize from a JSON string.
pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let content = Parser::new(s).parse_root()?;
    T::deserialize(ContentDeserializer(content)).map_err(Error::from)
}

/// Deserialize from a [`Value`].
pub fn from_value<'de, T: Deserialize<'de>>(v: Value) -> Result<T, Error> {
    T::deserialize(ContentDeserializer(v.to_content())).map_err(Error::from)
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render a content tree as JSON. `indent: None` → compact;
/// `Some(level)` → pretty with two spaces per level.
fn render(c: &Content, indent: Option<usize>) -> String {
    let mut out = String::new();
    render_into(c, indent, &mut out);
    out
}

fn pad(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn render_into(c: &Content, indent: Option<usize>, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => out.push_str(&v.to_string()),
        Content::Str(s) => escape_into(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match indent {
                    None => render_into(item, None, out),
                    Some(level) => {
                        out.push('\n');
                        pad(out, level + 1);
                        render_into(item, Some(level + 1), out);
                    }
                }
            }
            if let Some(level) = indent {
                out.push('\n');
                pad(out, level);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    pad(out, level + 1);
                }
                match k {
                    Content::Str(s) => escape_into(s, out),
                    other => {
                        // Lossy but loud: the workspace only uses
                        // string-keyed maps at the JSON boundary.
                        escape_into(&format!("{other:?}"), out);
                    }
                }
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render_into(v, indent.map(|l| l + 1), out);
            }
            if let Some(level) = indent {
                out.push('\n');
                pad(out, level);
            }
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_root(&mut self) -> Result<Content, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(v)
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.keyword("null", Content::Null),
            Some(b't') => self.keyword("true", Content::Bool(true)),
            Some(b'f') => self.keyword("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((Content::Str(key), value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn keyword(&mut self, kw: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| self.err("invalid float"))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Content::I64(v))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| self.err("number out of range"))
        }
    }
}
